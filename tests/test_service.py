"""Live scheduler service (DESIGN.md §12).

Covers the streaming :class:`SchedulerCore` contract (submit mid-run,
snapshots, incremental results), the service-vs-batch bit-identity
guarantee under concurrent multi-client submission in both cache modes,
admission-queue backpressure, fault reporting, and the wire protocol
(JSON lines and the minimal HTTP mapping on the same port).
"""

from __future__ import annotations

import http.client
import json
import threading
from contextlib import contextmanager

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.hardware.topology import ClusterSpec
from repro.service import (
    SchedulerMaster,
    ServiceClient,
    ServiceError,
    protocol,
    serve_in_thread,
)
from repro.sim.runtime import SchedulerCore, Simulation
from repro.workloads.sequences import clone_jobs, random_sequence


def fresh_core(policy="SNS", nodes=8, jobs=(), caches=None):
    return SchedulerCore.from_policy_name(
        policy, ClusterSpec(num_nodes=nodes), jobs,
        sim_config=SimConfig(telemetry=False, perf_caches=caches),
    )


def fingerprint(result):
    """Everything observable about a finished run, order-normalized."""
    return (
        result.makespan,
        result.mean_turnaround(),
        sorted(
            (j.job_id, j.program.name, j.procs, j.submit_time,
             j.start_time, j.finish_time,
             j.placement.n_nodes, j.placement.dedicated_ways)
            for j in result.jobs
        ),
    )


@contextmanager
def live_service(policy="SNS", nodes=8, caches=None, queue_limit=256):
    core = fresh_core(policy=policy, nodes=nodes, caches=caches)
    master = SchedulerMaster(core, queue_limit=queue_limit)
    handle = serve_in_thread(master)
    try:
        yield master, handle
    finally:
        handle.stop()


class TestStreamingCore:
    """The batch loop IS the streaming loop run to exhaustion."""

    def test_run_equals_manual_step_loop(self):
        jobs = random_sequence(seed=5, n_jobs=8)
        batch = fresh_core(jobs=clone_jobs(jobs)).run()
        core = fresh_core(jobs=clone_jobs(jobs))
        core.start()
        while core.step():
            pass
        assert fingerprint(core.finalize()) == fingerprint(batch)

    def test_batch_facade_is_the_core(self):
        """`Simulation` is a facade subclass, not a parallel code path."""
        assert issubclass(Simulation, SchedulerCore)
        jobs = random_sequence(seed=5, n_jobs=6)
        spec = ClusterSpec(num_nodes=8)
        config = SimConfig(telemetry=False)
        a = Simulation.from_policy_name(
            "SNS", spec, clone_jobs(jobs), sim_config=config).run()
        b = SchedulerCore.from_policy_name(
            "SNS", spec, clone_jobs(jobs), sim_config=config).run()
        assert fingerprint(a) == fingerprint(b)

    def test_submit_mid_run_matches_batch(self):
        """A job submitted while stepping lands exactly where the batch
        run would have put it."""
        jobs = random_sequence(seed=9, n_jobs=8)
        late = random_sequence(seed=10, n_jobs=1, start_id=len(jobs))[0]

        core = fresh_core(jobs=clone_jobs(jobs))
        core.start()
        for _ in range(3):
            assert core.step()
        late.submit_time = core.now + 0.5
        core.submit(late)
        streamed = core.run()

        batch_jobs = clone_jobs(jobs)
        late_clone = clone_jobs([late])[0]
        batch = fresh_core(jobs=batch_jobs + [late_clone]).run()
        assert fingerprint(streamed) == fingerprint(batch)

    def test_snapshot_and_peek_result(self):
        jobs = random_sequence(seed=3, n_jobs=6)
        core = fresh_core(jobs=clone_jobs(jobs))
        snap = core.snapshot()
        assert snap.submitted == 6
        assert snap.finished == 0
        assert snap.next_event_time == 0.0
        core.start()
        # All six submits are at t=0, so after the first batch every job
        # has arrived and the lifecycle counters must account for all.
        while core.step():
            partial = core.peek_result()
            assert partial.complete is False
            snap = core.snapshot()
            assert snap.submitted == 6
            assert (snap.pending + snap.running
                    + snap.finished + snap.failed) == 6
        final = core.finalize()
        assert final.complete is True
        snap = core.snapshot()
        assert snap.finished == 6
        assert snap.next_event_time is None
        assert snap.mean_turnaround == pytest.approx(final.mean_turnaround())

    def test_duplicate_submit_rejected(self):
        jobs = random_sequence(seed=1, n_jobs=2)
        core = fresh_core(jobs=clone_jobs(jobs))
        with pytest.raises(SimulationError, match="duplicate job ids"):
            core.submit(clone_jobs(jobs)[0])


class TestServiceBatchIdentity:
    """The tentpole contract: a streamed run is bit-identical to a
    batch `run()` over the same jobs in the same arrival order."""

    CLIENT_WORKLOADS = [
        [("WC", 28), ("MG", 56), ("CG", 28), ("EP", 28), ("BFS", 56),
         ("HC", 28)],
        [("LU", 28), ("BW", 28), ("WC", 56), ("RNN", 28), ("MG", 28),
         ("TS", 28)],
        [("CG", 56), ("EP", 56), ("NW", 28), ("HC", 28), ("BW", 56),
         ("WC", 28)],
    ]

    @pytest.mark.parametrize("caches", [None, False])
    def test_concurrent_clients_match_batch(self, caches):
        with live_service(caches=caches) as (master, handle):
            errors = []

            def client_thread(workload):
                try:
                    with ServiceClient(handle.host, handle.port) as client:
                        for k, (program, procs) in enumerate(workload):
                            reply = client.submit(
                                program=program, procs=procs,
                                submit_time=k * 30.0,
                            )
                            assert reply["ok"], reply
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(w,))
                for w in self.CLIENT_WORKLOADS
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors

            n_jobs = sum(len(w) for w in self.CLIENT_WORKLOADS)
            with ServiceClient(handle.host, handle.port) as client:
                summary = client.drain()
                lat = client.latencies()
                stats = client.stats()
            assert summary["finished"] + summary["failed"] == n_jobs
            assert lat["placed"] == n_jobs
            assert lat["awaiting"] == 0
            assert len(lat["latencies"]) == n_jobs
            assert all(v >= 0.0 for v in lat["latencies"])
            assert stats["drained"] is True

            # The service admitted jobs in some interleaving; the batch
            # twin replays exactly that order (ids are assigned at
            # admission, so id order == arrival order).
            arrival = [master.core.jobs[i]
                       for i in sorted(master.core.jobs)]
            streamed = master.core.finalize()
            batch = fresh_core(jobs=clone_jobs(arrival),
                               caches=caches).run()
            assert fingerprint(streamed) == fingerprint(batch)
            assert summary["makespan"] == batch.makespan
            assert summary["mean_turnaround"] == pytest.approx(
                batch.mean_turnaround())

    def test_job_views_track_lifecycle(self):
        with live_service() as (master, handle):
            with ServiceClient(handle.host, handle.port) as client:
                reply = client.submit(program="MG", procs=28)
                job_id = reply["job_id"]
                client.drain()
                view = client.job(job_id)
                assert view["state"] == "finished"
                assert view["program"] == "MG"
                assert view["finish_time"] > view["start_time"]
                assert view["turnaround"] > 0.0
                assert view["n_nodes"] >= 1
                with pytest.raises(ServiceError, match="unknown job"):
                    client.job(10_000)


class TestBackpressure:
    def test_bounded_queue_rejects_retryable(self):
        with live_service(queue_limit=4) as (master, handle):
            with ServiceClient(handle.host, handle.port) as client:
                client.pause()
                rejection = None
                accepted = 0
                # The scheduler task may already be parked inside the
                # gate and so consume the first enqueued batch; the
                # queue then backs up and must overflow within
                # queue_limit + 2 further submissions.
                for _ in range(10):
                    reply = client.submit(program="EP", procs=28)
                    if reply.get("ok", False):
                        accepted += 1
                    else:
                        rejection = reply
                        break
                assert rejection is not None, "queue never overflowed"
                assert rejection["retryable"] is True
                assert "queue full" in rejection["error"]
                stats = client.stats()
                assert stats["rejected"] >= 1
                assert stats["accepted"] == accepted

                # The rejection left no trace: admission resumes and
                # every accepted job completes.
                client.resume()
                retried = client.submit(program="EP", procs=28)
                assert retried["ok"], retried
                summary = client.drain()
                assert summary["finished"] == accepted + 1
                assert summary["failed"] == 0

    def test_watermark_clamps_stale_submit_times(self):
        with live_service() as (master, handle):
            with ServiceClient(handle.host, handle.port) as client:
                first = client.submit(program="WC", procs=28,
                                      submit_time=100.0)
                assert first["submit_time"] == 100.0
                stale = client.submit(program="WC", procs=28,
                                      submit_time=50.0)
                assert stale["submit_time"] == 100.0


class TestFaultReporting:
    def test_unschedulable_job_reports_fault(self):
        """A genuinely unschedulable submission (GAN cannot span nodes)
        must surface as a fault reply, not a dropped connection."""
        with live_service() as (master, handle):
            with ServiceClient(handle.host, handle.port) as client:
                client.submit(program="GAN", procs=56)
                with pytest.raises(ServiceError,
                                   match="placed nothing on an idle"):
                    client.drain()
                stats = client.stats()
                assert stats["fault"] is not None
                reply = client.request({"op": "submit", "program": "WC",
                                        "procs": 28})
                assert reply["ok"] is False
                assert reply["retryable"] is False
                assert "scheduler fault" in reply["error"]

    def test_bad_submissions_rejected_without_state_change(self):
        with live_service() as (master, handle):
            with ServiceClient(handle.host, handle.port) as client:
                for payload in (
                    {"op": "submit"},                      # no program
                    {"op": "submit", "program": "NOPE",
                     "procs": 28},                         # unknown program
                    {"op": "submit", "program": "WC"},     # no procs
                    {"op": "nope"},                        # unknown op
                ):
                    reply = client.request(payload)
                    assert reply["ok"] is False
                    assert reply["retryable"] is False
                ok = client.submit(program="WC", procs=28, job_id=7)
                dup = client.request({"op": "submit", "program": "WC",
                                      "procs": 28, "job_id": 7})
                assert ok["ok"] and not dup["ok"]
                assert "duplicate" in dup["error"]
                stats = client.stats()
                assert stats["accepted"] == 1


class TestHttpInterface:
    def test_http_routes(self):
        with live_service() as (master, handle):
            conn = http.client.HTTPConnection(handle.host, handle.port,
                                              timeout=10)
            try:
                body = json.dumps({"program": "MG", "procs": 28})
                conn.request("POST", "/submit", body=body)
                resp = conn.getresponse()
                assert resp.status == 200
                reply = json.loads(resp.read())
                assert reply["ok"] and reply["job_id"] == 0

                conn.request("GET", "/stats")
                resp = conn.getresponse()
                assert resp.status == 200
                assert json.loads(resp.read())["accepted"] == 1

                conn.request("GET", "/jobs/0")
                resp = conn.getresponse()
                assert resp.status == 200
                assert json.loads(resp.read())["program"] == "MG"

                conn.request("GET", "/nope")
                resp = conn.getresponse()
                assert resp.status == 404
                resp.read()

                conn.request("POST", "/submit",
                             body=json.dumps({"program": "NOPE",
                                              "procs": 28}))
                resp = conn.getresponse()
                assert resp.status == 400
                resp.read()

                conn.request("POST", "/drain")
                resp = conn.getresponse()
                assert resp.status == 200
                summary = json.loads(resp.read())
                assert summary["finished"] == 1
            finally:
                conn.close()

    def test_http_and_lines_share_one_port(self):
        with live_service() as (master, handle):
            with ServiceClient(handle.host, handle.port) as client:
                client.submit(program="WC", procs=28)
            conn = http.client.HTTPConnection(handle.host, handle.port,
                                              timeout=10)
            try:
                conn.request("GET", "/stats")
                resp = conn.getresponse()
                assert json.loads(resp.read())["accepted"] == 1
            finally:
                conn.close()


class TestProtocol:
    def test_frame_roundtrip(self):
        frame = protocol.encode({"op": "ping", "x": 1.5})
        assert frame.endswith(b"\n")
        assert protocol.decode(frame) == {"op": "ping", "x": 1.5}

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            protocol.decode(b"[1,2,3]\n")
        with pytest.raises(ValueError):
            protocol.decode(b"not json\n")

    def test_route_request(self):
        assert protocol.route_request("GET", "/stats", None) == {
            "op": "stats"}
        assert protocol.route_request("GET", "/jobs/12", None) == {
            "op": "job", "job_id": 12}
        req = protocol.route_request(
            "POST", "/submit", b'{"program":"WC","procs":28}')
        assert req == {"op": "submit", "program": "WC", "procs": 28}
        assert protocol.route_request("GET", "/nope", None) is None
        assert protocol.route_request("DELETE", "/stats", None) is None

    def test_http_status_mapping(self):
        assert protocol.http_status_for({"ok": True})[0] == 200
        assert protocol.http_status_for(
            protocol.error("full", retryable=True))[0] == 503
        assert protocol.http_status_for(protocol.error("bad"))[0] == 400
