"""Runtime node state: core/way/bandwidth accounting."""

import pytest

from repro.apps.catalog import get_program
from repro.errors import AllocationError
from repro.hardware.node_spec import NodeSpec
from repro.sim.node import NodeState

SPEC = NodeSpec()


@pytest.fixture
def node() -> NodeState:
    return NodeState(node_id=0, spec=SPEC, partitioned=True)


@pytest.fixture
def shared_node() -> NodeState:
    return NodeState(node_id=0, spec=SPEC, partitioned=False)


class TestAccounting:
    def test_fresh_node_idle(self, node):
        assert node.is_idle
        assert node.free_cores == 28
        assert node.free_ways == 20
        assert node.free_bw == pytest.approx(SPEC.peak_bw)

    def test_place_deducts_resources(self, node):
        node.place(1, get_program("MG"), 8, 4, 30.0, n_nodes=2)
        assert node.free_cores == 20
        assert node.free_ways == 16
        assert node.free_bw == pytest.approx(SPEC.peak_bw - 30.0)
        assert not node.is_idle

    def test_remove_restores_resources(self, node):
        node.place(1, get_program("MG"), 8, 4, 30.0, n_nodes=2)
        node.remove(1)
        assert node.is_idle
        assert node.free_ways == 20
        assert node.free_bw == pytest.approx(SPEC.peak_bw)

    def test_double_place_rejected(self, node):
        node.place(1, get_program("EP"), 4, 2, 0.0, 1)
        with pytest.raises(AllocationError):
            node.place(1, get_program("EP"), 4, 2, 0.0, 1)

    def test_remove_absent_rejected(self, node):
        with pytest.raises(AllocationError):
            node.remove(7)

    def test_core_overflow_rejected(self, node):
        node.place(1, get_program("EP"), 20, 2, 0.0, 1)
        with pytest.raises(AllocationError):
            node.place(2, get_program("EP"), 10, 2, 0.0, 1)


class TestCanHost:
    def test_fits(self, node):
        assert node.can_host(28, 20, SPEC.peak_bw)

    def test_core_bound(self, node):
        assert not node.can_host(29, 2, 0.0)

    def test_way_bound(self, node):
        node.place(1, get_program("CG"), 8, 15, 10.0, 1)
        assert not node.can_host(4, 6, 0.0)
        assert node.can_host(4, 5, 0.0)

    def test_bandwidth_bound(self, node):
        node.place(1, get_program("MG"), 16, 2, 100.0, 1)
        assert not node.can_host(4, 2, 30.0)
        assert node.can_host(4, 2, 10.0)

    def test_unpartitioned_ignores_ways(self, shared_node):
        assert shared_node.can_host(4, 0, 0.0)


class TestEffectiveWays:
    def test_partitioned_residual_share(self, node):
        node.place(1, get_program("CG"), 8, 10, 10.0, 1)
        node.place(2, get_program("EP"), 8, 2, 0.1, 1)
        # 8 free ways -> +4 each.
        assert node.effective_ways(1) == pytest.approx(14.0)
        assert node.effective_ways(2) == pytest.approx(6.0)

    def test_unpartitioned_proportional_share(self, shared_node):
        shared_node.place(1, get_program("CG"), 12, 0, 0.0, 1)
        shared_node.place(2, get_program("EP"), 4, 0, 0.0, 1)
        assert shared_node.effective_ways(1) == pytest.approx(15.0)
        assert shared_node.effective_ways(2) == pytest.approx(5.0)

    def test_absent_job_rejected(self, node):
        with pytest.raises(AllocationError):
            node.effective_ways(3)


class TestOccupancyMetric:
    def test_idle_node_is_zero(self, node):
        assert node.occupancy_metric(beta=2.0) == 0.0

    def test_beta_weights_ways(self, node):
        node.place(1, get_program("CG"), 14, 10, 0.0, 1)
        # Co = 0.5, Wo = 0.5, Bo = 0.
        assert node.occupancy_metric(beta=2.0) == pytest.approx(1.5)
        assert node.occupancy_metric(beta=0.0) == pytest.approx(0.5)

    def test_bandwidth_term_clamped(self, node):
        node.place(1, get_program("MG"), 14, 2, SPEC.peak_bw * 2, 1)
        metric = node.occupancy_metric(beta=0.0)
        assert metric == pytest.approx(0.5 + 1.0)


class TestSlices:
    def test_slices_reflect_residents(self, node):
        node.place(1, get_program("MG"), 8, 4, 30.0, n_nodes=2)
        node.place(2, get_program("EP"), 4, 2, 0.1, n_nodes=1)
        slices = {s.job_id: s for s in node.slices()}
        assert slices[1].procs == 8
        assert slices[1].n_nodes == 2
        assert slices[1].effective_ways == node.effective_ways(1)
        assert slices[2].program.name == "EP"

    def test_dedicated_ways_partitioned(self, node):
        node.place(1, get_program("CG"), 8, 10, 0.0, 1)
        assert node.dedicated_ways(1) == 10

    def test_dedicated_ways_unpartitioned_zero(self, shared_node):
        shared_node.place(1, get_program("CG"), 8, 10, 0.0, 1)
        assert shared_node.dedicated_ways(1) == 0
