"""Curve primitives: working-set miss law and piecewise-linear profiles."""

import pytest

from repro.apps.curves import (
    PiecewiseLinearCurve,
    WorkingSetMissCurve,
    geometric_scales,
    saturating_speedup,
)
from repro.errors import HardwareModelError, ProfileError


class TestWorkingSetMissCurve:
    def test_zero_capacity_full_misses(self):
        curve = WorkingSetMissCurve(half_mb=2.0, floor=0.1)
        assert curve.miss_fraction(0.0) == pytest.approx(1.0)

    def test_half_point(self):
        curve = WorkingSetMissCurve(half_mb=2.0, floor=0.0)
        assert curve.miss_fraction(2.0) == pytest.approx(0.5)

    def test_floor_is_asymptote(self):
        curve = WorkingSetMissCurve(half_mb=1.0, floor=0.3)
        assert curve.miss_fraction(1e6) == pytest.approx(0.3)

    def test_monotone_decreasing(self):
        curve = WorkingSetMissCurve(half_mb=3.0, floor=0.2)
        values = [curve.miss_fraction(s) for s in (0, 1, 2, 4, 8, 16, 64)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_streaming_floor_one_is_flat(self):
        curve = WorkingSetMissCurve(half_mb=1.0, floor=1.0)
        assert curve.miss_fraction(0.0) == curve.miss_fraction(100.0) == 1.0

    def test_rejects_bad_params(self):
        with pytest.raises(HardwareModelError):
            WorkingSetMissCurve(half_mb=0.0)
        with pytest.raises(HardwareModelError):
            WorkingSetMissCurve(half_mb=1.0, floor=1.5)

    def test_rejects_negative_capacity(self):
        with pytest.raises(HardwareModelError):
            WorkingSetMissCurve(half_mb=1.0).miss_fraction(-1.0)


class TestPiecewiseLinearCurve:
    @pytest.fixture
    def curve(self):
        return PiecewiseLinearCurve.from_samples([2, 4, 8, 20], [1.0, 2.0, 4.0, 10.0])

    def test_exact_at_samples(self, curve):
        assert curve(4.0) == pytest.approx(2.0)
        assert curve(20.0) == pytest.approx(10.0)

    def test_linear_between_samples(self, curve):
        assert curve(3.0) == pytest.approx(1.5)
        assert curve(14.0) == pytest.approx(7.0)

    def test_clamped_extrapolation(self, curve):
        # The paper never extrapolates beyond the sampled 2..20 range.
        assert curve(0.0) == pytest.approx(1.0)
        assert curve(100.0) == pytest.approx(10.0)

    def test_min_x_reaching_interpolates(self, curve):
        assert curve.min_x_reaching(3.0) == pytest.approx(6.0)

    def test_min_x_reaching_below_first(self, curve):
        assert curve.min_x_reaching(0.5) == pytest.approx(2.0)

    def test_min_x_reaching_unreachable_clamps(self, curve):
        assert curve.min_x_reaching(99.0) == pytest.approx(20.0)

    def test_min_x_reaching_flat_segment(self):
        curve = PiecewiseLinearCurve.from_samples([1, 2, 3], [1.0, 1.0, 2.0])
        assert curve.min_x_reaching(1.0) == pytest.approx(1.0)

    def test_from_mapping_sorts(self):
        curve = PiecewiseLinearCurve.from_mapping({8: 3.0, 2: 1.0})
        assert curve.x_min == 2.0 and curve.x_max == 8.0

    def test_as_lists_roundtrip(self, curve):
        xs, ys = curve.as_lists()
        again = PiecewiseLinearCurve.from_samples(xs, ys)
        assert again.points == curve.points

    def test_rejects_unsorted_x(self):
        with pytest.raises(ProfileError):
            PiecewiseLinearCurve(((2.0, 1.0), (2.0, 2.0)))

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            PiecewiseLinearCurve(())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ProfileError):
            PiecewiseLinearCurve.from_samples([1, 2], [1.0])

    def test_single_point_constant(self):
        curve = PiecewiseLinearCurve(((5.0, 3.0),))
        assert curve(0.0) == curve(100.0) == 3.0


class TestHelpers:
    def test_saturating_speedup_limits(self):
        assert saturating_speedup(0.0, 1.0, 2.0) == pytest.approx(1.0)
        assert saturating_speedup(1e9, 1.0, 2.0) == pytest.approx(2.0)

    def test_saturating_speedup_validation(self):
        with pytest.raises(HardwareModelError):
            saturating_speedup(-1.0, 1.0, 2.0)
        with pytest.raises(HardwareModelError):
            saturating_speedup(1.0, 0.0, 2.0)
        with pytest.raises(HardwareModelError):
            saturating_speedup(1.0, 1.0, 0.5)

    def test_geometric_scales(self):
        assert geometric_scales(8) == [1, 2, 4, 8]
        assert geometric_scales(7) == [1, 2, 4]
        assert geometric_scales(1) == [1]

    def test_geometric_scales_validation(self):
        with pytest.raises(HardwareModelError):
            geometric_scales(0)
