"""Simulation runtime integration tests."""

import pytest

from repro.apps.catalog import get_program
from repro.config import SimConfig
from repro.errors import SimulationError
from repro.hardware.topology import ClusterSpec
from repro.perfmodel.execution import reference_time
from repro.scheduling.ce import CompactExclusiveScheduler
from repro.scheduling.cs import CompactShareScheduler
from repro.scheduling.sns import SpreadNShareScheduler
from repro.sim.job import Job, JobState
from repro.sim.runtime import Simulation


def run(cluster_nodes, jobs, policy_cls=CompactExclusiveScheduler,
        telemetry=False):
    cluster = ClusterSpec(num_nodes=cluster_nodes)
    policy = policy_cls(cluster)
    return Simulation(cluster, policy, jobs,
                      SimConfig(telemetry=telemetry)).run()


class TestSingleJob:
    def test_solo_job_runs_at_reference_time(self):
        ep = get_program("EP")
        job = Job(job_id=0, program=ep, procs=16)
        result = run(1, [job])
        expected = reference_time(ep, 16, ClusterSpec(num_nodes=1).node)
        assert job.run_time == pytest.approx(expected)
        assert job.wait_time == 0.0
        assert result.makespan == pytest.approx(expected)

    def test_work_multiplier_scales_runtime(self):
        ep = get_program("EP")
        base = Job(job_id=0, program=ep, procs=16)
        run(1, [base])
        doubled = Job(job_id=0, program=ep, procs=16, work_multiplier=2.0)
        run(1, [doubled])
        assert doubled.run_time == pytest.approx(2.0 * base.run_time)

    def test_submit_time_respected(self):
        ep = get_program("EP")
        job = Job(job_id=0, program=ep, procs=16, submit_time=100.0)
        result = run(1, [job])
        assert job.start_time == pytest.approx(100.0)
        assert result.makespan == pytest.approx(100.0 + job.run_time)


class TestQueueing:
    def test_ce_serializes_on_one_node(self):
        ep = get_program("EP")
        jobs = [Job(job_id=i, program=ep, procs=16) for i in range(3)]
        run(1, jobs)
        starts = sorted(j.start_time for j in jobs)
        t = reference_time(ep, 16, ClusterSpec(num_nodes=1).node)
        assert starts == pytest.approx([0.0, t, 2 * t])

    def test_parallel_nodes_run_concurrently(self):
        ep = get_program("EP")
        jobs = [Job(job_id=i, program=ep, procs=16) for i in range(3)]
        run(3, jobs)
        assert all(j.wait_time == 0.0 for j in jobs)

    def test_all_jobs_finish(self):
        jobs = [
            Job(job_id=i, program=get_program(name), procs=16)
            for i, name in enumerate(("MG", "CG", "EP", "WC", "TS"))
        ]
        result = run(2, jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_oversized_job_deadlocks_with_clear_error(self):
        ep = get_program("EP")
        job = Job(job_id=0, program=ep, procs=28 * 3)  # needs 3 nodes
        with pytest.raises(
            SimulationError,
            match="deadlock|never scheduled|placed nothing",
        ):
            run(2, [job])


class TestCoScheduling:
    def test_contention_slows_co_runners(self):
        """Two MG jobs sharing a node via CS run slower than solo."""
        mg = get_program("MG")
        solo = Job(job_id=0, program=mg, procs=14)
        run(1, [solo], CompactShareScheduler)

        pair = [Job(job_id=i, program=mg, procs=14) for i in range(2)]
        run(1, pair, CompactShareScheduler)
        assert all(j.run_time > 1.2 * solo.run_time for j in pair)

    def test_light_co_runners_barely_interfere(self):
        ep = get_program("EP")
        solo = Job(job_id=0, program=ep, procs=14)
        run(1, [solo], CompactShareScheduler)

        pair = [Job(job_id=i, program=ep, procs=14) for i in range(2)]
        run(1, pair, CompactShareScheduler)
        for j in pair:
            assert j.run_time == pytest.approx(solo.run_time, rel=0.1)

    def test_finish_event_reschedules_on_co_runner_exit(self):
        """A job slowed by a co-runner speeds back up when it leaves."""
        mg = get_program("MG")
        long_job = Job(job_id=0, program=mg, procs=14, work_multiplier=2.0)
        short_job = Job(job_id=1, program=mg, procs=14)
        run(1, [long_job, short_job], CompactShareScheduler)
        # The long job ran contended while the short one lived, then
        # uncontended: its total must be strictly less than 2x the
        # fully-contended prediction and more than the solo prediction.
        solo = Job(job_id=0, program=mg, procs=14, work_multiplier=2.0)
        run(1, [solo], CompactShareScheduler)
        assert long_job.run_time > solo.run_time
        assert long_job.finish_time > short_job.finish_time


class TestResultAccessors:
    def test_throughput_is_reciprocal_mean_turnaround(self):
        ep = get_program("EP")
        jobs = [Job(job_id=i, program=ep, procs=16) for i in range(2)]
        result = run(2, jobs)
        mean = sum(j.turnaround_time for j in jobs) / 2
        assert result.throughput() == pytest.approx(1.0 / mean)

    def test_node_seconds_accounts_footprints(self):
        ep = get_program("EP")
        job = Job(job_id=0, program=ep, procs=56)  # 2 nodes under CE
        result = run(2, [job])
        assert result.node_seconds() == pytest.approx(2 * job.run_time)

    def test_duplicate_job_ids_rejected(self):
        ep = get_program("EP")
        jobs = [Job(job_id=0, program=ep, procs=16) for _ in range(2)]
        with pytest.raises(SimulationError):
            run(1, jobs)


class TestTelemetryIntegration:
    def test_telemetry_records_usage(self):
        mg = get_program("MG")
        job = Job(job_id=0, program=mg, procs=16)
        result = run(1, [job], telemetry=True)
        matrix = result.telemetry.episode_matrix(30.0, result.makespan)
        assert matrix.max() > 50.0  # MG saturates the node

    def test_telemetry_disabled(self):
        ep = get_program("EP")
        result = run(1, [Job(job_id=0, program=ep, procs=16)])
        assert result.telemetry is None


class TestConservation:
    def test_work_conservation_under_churn(self):
        """Progress integration must conserve total work across speed
        changes: every finished job's settled work equals its total."""
        jobs = [
            Job(job_id=i, program=get_program(name), procs=14)
            for i, name in enumerate(("MG", "CG", "EP", "HC", "BW", "TS"))
        ]
        result = run(2, jobs, CompactShareScheduler)
        for job in result.finished_jobs:
            assert job.remaining_work == pytest.approx(0.0, abs=1e-6)
            assert job.finish_time >= job.start_time
