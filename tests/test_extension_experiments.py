"""Extension experiments: ablations and the four-way baselines."""

import pytest

from repro.experiments.ablations import (
    default_variants,
    format_ablation,
    run_ablation,
)
from repro.experiments.baselines import format_baselines, run_baselines


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation(n_sequences=8, n_jobs=20)

    def test_baseline_positive(self, result):
        assert result.get("baseline").mean_gain_over_ce > 0.05

    def test_residual_sharing_contributes(self, result):
        assert (
            result.get("no-residual-share").mean_gain_over_ce
            < result.get("baseline").mean_gain_over_ce
        )

    def test_all_variants_present(self, result):
        names = {o.name for o in result.outcomes}
        assert names == {v.name for v in default_variants()}

    def test_conservative_variants_reduce_violations(self, result):
        base = result.get("baseline").alpha_violations
        assert result.get("headroom-0.8").alpha_violations <= base

    def test_unknown_variant_raises(self, result):
        with pytest.raises(KeyError):
            result.get("nope")

    def test_format(self, result):
        out = format_ablation(result)
        assert "variant" in out and "baseline" in out


class TestBaselines:
    @pytest.fixture(scope="class")
    def result(self):
        return run_baselines(n_sequences=8, n_jobs=20)

    def test_sns_best_on_average(self, result):
        assert result.mean_gain("SNS") == max(
            result.mean_gain(p) for p in ("CE", "CE-BF", "CS", "SNS")
        )

    def test_sns_beats_backfill_mostly(self, result):
        assert result.wins_over("SNS", "CE-BF") >= 5

    def test_ce_is_the_unit_baseline(self, result):
        assert all(r == pytest.approx(1.0) for r in result.relative["CE"])

    def test_format(self, result):
        out = format_baselines(result)
        assert "CE-BF" in out and "wide-job max wait" in out

    def test_paper_workload_has_no_backfill_opportunity(self):
        """With the paper's 16/28-process jobs every CE footprint is one
        node, so EASY backfilling degenerates to the base queue."""
        result = run_baselines(n_sequences=4, proc_choices=(16, 28))
        for ce, bf in zip(result.relative["CE"], result.relative["CE-BF"]):
            assert bf == pytest.approx(ce)
