"""Golden-trace regression (DESIGN.md §10).

The decisions-level trace of a seeded run is **byte-stable**: the
canonical JSONL lines must be identical under the memoized fast path,
the unmemoized reference kernels, thread-interleaved execution, and —
because decision records are level-independent — inside higher-level
traces.  ``tests/data/golden_trace_sns.jsonl`` pins the stream of one
seeded 4-node / 8-job SNS run; any diff against it means the scheduler
made different decisions (or the record schema changed).

Regenerate after an *intentional* schema or policy change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_trace_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.config import SimConfig, TraceConfig
from repro.experiments.common import run_policy
from repro.experiments.parallel import run_grid
from repro.hardware.topology import ClusterSpec
from repro.obs import decision_stream, read_jsonl, trace_lines, verify_trace
from repro.workloads.sequences import random_sequence

GOLDEN = Path(__file__).parent / "data" / "golden_trace_sns.jsonl"

#: The pinned scenario: SNS on 4 nodes, 8 seeded jobs.
SEED, N_JOBS, NODES = 7, 8, 4


def golden_lines(caches=None, level="decisions"):
    """The scenario's decisions-level stream as canonical JSONL lines."""
    result = run_policy(
        "SNS",
        ClusterSpec(num_nodes=NODES),
        random_sequence(seed=SEED, n_jobs=N_JOBS),
        sim_config=SimConfig(
            telemetry=False, perf_caches=caches,
            trace=TraceConfig(level=level),
        ),
    )
    return list(trace_lines(decision_stream(result.trace.events)))


@pytest.fixture(scope="module")
def committed():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text("\n".join(golden_lines()) + "\n")
    assert GOLDEN.exists(), \
        "golden trace missing; regenerate with REPRO_REGEN_GOLDEN=1"
    return GOLDEN.read_text().splitlines()


class TestGoldenTrace:
    def test_matches_committed_reference(self, committed):
        assert golden_lines() == committed

    def test_byte_stable_without_caches(self, committed):
        """The unmemoized reference kernels replay the same decisions."""
        assert golden_lines(caches=False) == committed

    def test_decision_stream_level_independent(self, committed):
        """events/full-level traces embed the identical decision
        stream — the extra record kinds never perturb it."""
        assert golden_lines(level="events") == committed
        assert golden_lines(level="full") == committed

    def test_byte_stable_under_thread_interleaving(self, committed):
        """Four copies interleaved on a thread pool each reproduce the
        committed stream (per-simulation tracer + perf context: no
        shared observability state to race on)."""
        streams = run_grid(
            lambda caches: golden_lines(caches=caches),
            [None, False, None, False], executor="threads", jobs=4,
        )
        for stream in streams:
            assert stream == committed

    def test_golden_file_is_replayable(self, committed):
        """The committed artifact itself parses and passes every
        conservation law — golden files rot when nobody reads them."""
        events = read_jsonl(str(GOLDEN))
        assert len(events) == len(committed)
        verify_trace(events, label="golden")
        kinds = {e["ev"] for e in events}
        assert {"meta", "submit", "start", "finish"} <= kinds
