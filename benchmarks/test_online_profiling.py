"""Bench: online-profiling convergence (paper Sections 4.1-4.2).

A new program converges to its preferred scale within a handful of
piggybacked trial runs, starting from the CE execution model.
"""

from repro.experiments.online_profiling import (
    format_convergence,
    run_convergence,
)


def test_online_profiling_convergence(once, benchmark):
    result = once(benchmark, run_convergence, "CG", repetitions=8)
    assert result.repetitions[0].scale == 1       # first run is CE-like
    assert result.converged                        # ends at preferred scale
    assert result.converged_scale == 2             # CG's ideal: 2x
    assert result.repetitions[-1].normalized_runtime < 0.95
    print()
    print(format_convergence(result))
