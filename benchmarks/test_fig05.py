"""Bench: Fig 5 — impact of scaling on LLC miss rate.

Paper: MG's and CG's miss rates drop with spreading (more cache per
process); BFS's rises (communication-related accesses).
"""

from repro.experiments.fig05_missrate import format_fig05, run_fig05


def test_fig05_missrate_by_placement(benchmark):
    result = benchmark(run_fig05)
    rates = result.miss_rate
    assert rates["MG"][8] < rates["MG"][1]
    assert rates["CG"][8] < rates["CG"][1]
    assert rates["BFS"][8] > rates["BFS"][1]
    print()
    print(format_fig05(result))
