"""Bench: Fig 12 — cache sensitivity of all 12 test programs through
the profiling pipeline.

Paper: cache-insensitive programs (EP, HC) are happy with 2 ways while
cache-hungry ones (NW, CG) demand most of the cache, with very
different bandwidth at the near-saturation allocation.
"""

from repro.experiments.fig12_profiles import format_fig12, run_fig12


def test_fig12_program_profiles(benchmark):
    result = benchmark(run_fig12)
    assert len(result.ways90) == 12
    assert result.ways90["EP"] == 2
    assert result.ways90["CG"] >= 8
    assert result.ways90["NW"] >= 10
    assert result.bandwidth["MG"] > 80.0
    assert result.bandwidth["EP"] < 1.0
    print()
    print(format_fig12(result))
