"""Bench: Fig 13 — speedup of scaling out + program classification.

Paper: 5 scaling programs (MG CG LU TS BW; CG peaking at 2x with +13 %,
the others >30 % at their best scale), 1 compact (BFS), 4 neutral
(EP WC NW HC).
"""

from repro.experiments.fig13_scaleout import format_fig13, run_fig13
from repro.profiling.classify import ScalingClass


def test_fig13_scaleout_classification(benchmark):
    result = benchmark(run_fig13)
    census = {}
    for cls in result.classification.values():
        census[cls] = census.get(cls, 0) + 1
    assert census[ScalingClass.SCALING] == 5
    assert census[ScalingClass.COMPACT] == 1
    assert census[ScalingClass.NEUTRAL] == 4
    assert result.ideal_scale["CG"] == 2
    print()
    print(format_fig13(result))
