"""Bench: Fig 7 — computation vs communication breakdown.

Paper: NPB programs communicate for <10 % of runtime; CG's comm share
shrinks when spread (wait relief); BFS's grows until it dominates its
scaling loss.
"""

from repro.experiments.fig07_comm_breakdown import format_fig07, run_fig07


def test_fig07_comm_breakdown(benchmark):
    result = benchmark(run_fig07)
    assert result.breakdown["MG"][1][1] < 0.10
    assert result.breakdown["CG"][2][1] < result.breakdown["CG"][1][1]
    assert result.breakdown["BFS"][8][1] > result.breakdown["BFS"][1][1]
    print()
    print(format_fig07(result))
