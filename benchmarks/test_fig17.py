"""Bench: Fig 17 — per-node bandwidth heat matrix, CE vs SNS.

Paper: SNS's matrix is visibly smoother than CE's — spreading
bandwidth-bound jobs balances DRAM pressure across nodes.
"""

from repro.experiments.fig17_load_balance import format_fig17, run_fig17


def test_fig17_load_balance_matrix(once, benchmark):
    result = once(benchmark, run_fig17, seed=42, n_jobs=20)
    assert result.variance["SNS"] < result.variance["CE"]
    for matrix in result.matrices.values():
        assert matrix.shape[0] == 8
    print()
    print(format_fig17(result))
