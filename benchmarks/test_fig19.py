"""Bench: Fig 19 — impact of the workload scaling ratio (BW/HC mixes).

Paper: at ratio 0 SNS converges with CE; run time improves
monotonically with the ratio; turnaround beats CE by >10 % over the
mid-ratio range.
"""

import pytest

from repro.experiments.fig19_scaling_ratio import format_fig19, run_fig19


def test_fig19_scaling_ratio_sweep(once, benchmark):
    result = once(benchmark, run_fig19, n_points=11, n_jobs=30)
    first, last = result.points[0], result.points[-1]
    assert first.turnaround == pytest.approx(1.0, abs=0.02)
    assert last.run < first.run - 0.05
    mids = [p for p in result.points if 0.3 <= p.achieved_ratio <= 0.9]
    assert any(p.turnaround < 0.9 for p in mids)
    print()
    print(format_fig19(result))
