"""Bench: Fig 20 — trace-driven simulation of larger clusters.

Paper: the 4K-node replay is stampeded (wait-dominated); on relaxed
larger clusters SNS's run-time reduction dominates and its advantage
over CE grows with cluster size at scaling ratio 0.9.

The benchmark replays a reduced trace with the same per-node load
intensity (the full 7,044-job configuration runs via
``python -m repro run fig20``).
"""

from repro.experiments.fig20_large_cluster import (
    format_fig20,
    run_fig20,
    smoke_trace_config,
)


def test_fig20_large_cluster_trace(once, benchmark):
    result = once(
        benchmark, run_fig20,
        cluster_sizes=(4096, 8192, 16384),
        scaling_ratios=(0.9, 0.5),
        trace_config=smoke_trace_config(n_jobs=400, duration_hours=110),
    )
    congested = result.get(4096, 0.9)
    assert congested.ce_wait > congested.ce_run  # stampeded
    for nodes in (8192, 16384):
        relaxed = result.get(nodes, 0.9)
        assert relaxed.ce_wait < relaxed.ce_run
        assert relaxed.sns_run < relaxed.ce_run
        assert relaxed.sns_turnaround_gain > 0.05
    # At ratio 0.5 the spread benefit is smaller on relaxed clusters.
    assert (
        result.get(16384, 0.5).sns_turnaround_gain
        < result.get(16384, 0.9).sns_turnaround_gain
    )
    print()
    print(format_fig20(result))
