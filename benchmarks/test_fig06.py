"""Bench: Fig 6 — performance vs LLC way allocation (CAT sweep).

Paper: MG reaches 90 % of full-cache performance with ~3 ways, CG with
~10, BFS needs ~18, EP is insensitive.
"""

from repro.experiments.fig06_cache_sensitivity import format_fig06, run_fig06


def test_fig06_cache_sensitivity(benchmark):
    result = benchmark(run_fig06)
    assert result.ways90["MG"] <= 4
    assert 8 <= result.ways90["CG"] <= 12
    assert result.ways90["BFS"] >= 13
    assert result.ways90["EP"] <= 2
    print()
    print(format_fig06(result))
