"""Bench: Fig 18 — episode counts by bandwidth interval.

Paper: SNS removes both near-idle and near-peak episodes; the
bandwidth variance (sigma/peak) drops from 0.40 (CE) to 0.25 (SNS).
"""

import numpy as np

from repro.experiments.fig17_load_balance import run_fig17
from repro.experiments.fig18_histogram import format_fig18, from_fig17


def test_fig18_bandwidth_histogram(once, benchmark):
    fig17 = once(benchmark, run_fig17, seed=42, n_jobs=20)
    result = from_fig17(fig17)
    # The smoothing claim: lower episode-bandwidth variance under SNS.
    assert result.variance["SNS"] < result.variance["CE"]
    # Histograms cover every episode of their matrices.
    for policy, (edges, counts) in result.histograms.items():
        assert counts.sum() == fig17.matrices[policy].size
        assert len(edges) == len(counts) + 1
    # SNS concentrates mass away from the extremes relative to spread:
    # its mean-normalized dispersion is tighter.
    ce = fig17.matrices["CE"].ravel()
    sns = fig17.matrices["SNS"].ravel()
    assert np.std(sns) / max(np.mean(sns), 1e-9) < np.std(ce) / max(
        np.mean(ce), 1e-9
    )
    print()
    print(format_fig18(result))
