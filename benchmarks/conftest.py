"""Shared benchmark configuration.

Every benchmark regenerates one paper figure through the experiment
harness and asserts the paper's qualitative result on the output, so a
``--benchmark-only`` run doubles as the reproduction record.  Heavy
experiments (Figs 14-20) run a single round via ``benchmark.pedantic``;
the characterization experiments (Figs 1-13) are fast enough for normal
timing rounds.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavy experiment with exactly one execution."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
