"""Bench: ablations of SNS design choices (beyond the paper's figures).

Checks that the mechanisms the paper argues for actually carry weight
in this reproduction: residual-way sharing and the near-tie footprint
tolerance contribute measurable throughput; MBA-style enforcement and
bandwidth headroom trade throughput for fewer alpha violations.
"""

from repro.experiments.ablations import format_ablation, run_ablation


def test_ablation_study(once, benchmark):
    result = once(benchmark, run_ablation, n_sequences=12, n_jobs=20)
    baseline = result.get("baseline")
    assert baseline.mean_gain_over_ce > 0.08

    # Residual-way sharing carries real throughput.
    no_share = result.get("no-residual-share")
    assert no_share.mean_gain_over_ce < baseline.mean_gain_over_ce - 0.01

    # The near-tie footprint tolerance reduces fragmentation.
    no_tol = result.get("no-tolerance")
    assert no_tol.mean_gain_over_ce <= baseline.mean_gain_over_ce + 0.005

    # Conservative variants trade throughput for QoS (fewer violations).
    headroom = result.get("headroom-0.8")
    assert headroom.alpha_violations <= baseline.alpha_violations

    # Restricting scales loses some of the spreading benefit.
    limited = result.get("scales-1-2")
    assert limited.mean_gain_over_ce <= baseline.mean_gain_over_ce + 0.005

    print()
    print(format_ablation(result))
