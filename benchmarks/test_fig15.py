"""Bench: Fig 15 — sorted SNS/CE and SNS/CS throughput ratios.

Paper: SNS improves on CE in 35/36 sequences (up to +42.1 %) and beats
CS in 72 % of them.
"""

from repro.experiments.fig14_throughput import run_fig14
from repro.experiments.fig15_relative import format_fig15, from_fig14


def test_fig15_relative_throughput(once, benchmark):
    fig14 = once(benchmark, run_fig14, n_sequences=36, n_jobs=20)
    result = from_fig14(fig14)
    losses = sum(1 for r in result.sns_over_ce if r < 1.0)
    assert losses <= 2                      # paper: 1/36
    assert result.ce_max_gain > 0.15        # paper: +42.1 %
    assert result.cs_win_fraction > 0.5     # paper: 72 %
    print()
    print(format_fig15(result))
