"""Bench: Fig 1 — motivating MG+HC+TS example.

Paper: SNS packs the three programs onto 2 nodes instead of CE's 3,
cutting node-seconds by 34.6 % while MG and TS run *faster* and the
start-to-end time grows only 2.6 %.
"""

from repro.experiments.fig01_motivating import format_fig01, run_fig01


def test_fig01_motivating_example(benchmark):
    result = benchmark(run_fig01)
    saved = 1.0 - result.node_seconds["SNS"] / result.node_seconds["CE"]
    assert saved > 0.20
    assert result.makespan["SNS"] / result.makespan["CE"] < 1.15
    assert result.program_time["SNS"]["MG"] < result.program_time["CE"]["MG"]
    assert result.program_time["SNS"]["TS"] < result.program_time["CE"]["TS"]
    print()
    print(format_fig01(result))
