"""Bench: Fig 16 — individual job run-time distribution.

Paper: SNS's per-sequence average normalized runtime stays below CS's;
CS's worst-case job slowdown reaches 3.5x; a small tail of SNS jobs
violates the alpha = 0.9 slowdown threshold.
"""

from repro.experiments.fig14_throughput import run_fig14
from repro.experiments.fig16_runtime import format_fig16, from_fig14


def test_fig16_runtime_distribution(once, benchmark):
    fig14 = once(benchmark, run_fig14, n_sequences=36, n_jobs=20)
    result = from_fig14(fig14)
    for entry in result.per_sequence:
        assert entry["SNS"]["geomean"] <= entry["CS"]["geomean"] + 0.02
    cs_worst = max(e["CS"]["max"] for e in result.per_sequence)
    sns_worst = max(e["SNS"]["max"] for e in result.per_sequence)
    assert cs_worst > sns_worst
    v = result.alpha_violations
    assert v.violations <= 0.35 * v.total_jobs
    print()
    print(format_fig16(result))
