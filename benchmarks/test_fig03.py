"""Bench: Fig 3 — STREAM bandwidth with growing core count.

Paper: 18.80 GB/s single-core, ~37 GB/s at two cores, knee near 8
cores, 118.26 GB/s at 28 cores (per-core down to 4.22 GB/s).
"""

import pytest

from repro.experiments.fig03_stream import format_fig03, run_fig03


def test_fig03_stream_curve(benchmark):
    result = benchmark(run_fig03)
    assert result.aggregate[1] == pytest.approx(18.8, rel=0.02)
    assert result.aggregate[28] == pytest.approx(118.26, rel=0.01)
    assert result.per_core[28] == pytest.approx(4.22, rel=0.02)
    assert 6 <= result.saturation_cores <= 10
    print()
    print(format_fig03(result))
