"""Bench: Fig 14 — throughput of 36 random job sequences.

Paper: mean throughput gain over CE of 13.7 % (CS) and 19.8 % (SNS);
scaling ratios fall in 0.4-0.8.
"""

from repro.experiments.fig14_throughput import format_fig14, run_fig14


def test_fig14_throughput_36_sequences(once, benchmark):
    result = once(benchmark, run_fig14, n_sequences=36, n_jobs=20)
    assert result.mean_gain("SNS") > 0.08          # paper: +19.8 %
    assert result.mean_gain("CS") > 0.02           # paper: +13.7 %
    assert result.mean_gain("SNS") > result.mean_gain("CS")
    ratios = [o.scaling_ratio for o in result.outcomes]
    assert min(ratios) >= 0.2 and max(ratios) <= 0.9
    print()
    print(format_fig14(result))
