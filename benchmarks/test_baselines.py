"""Bench: four-way baseline comparison with wide jobs.

SNS's resource awareness must be worth more than EASY backfilling's
queue flexibility alone: it wins most sequences against backfilled CE.
"""

from repro.experiments.baselines import format_baselines, run_baselines


def test_baselines_with_wide_jobs(once, benchmark):
    result = once(benchmark, run_baselines, n_sequences=12, n_jobs=20)
    assert result.mean_gain("SNS") > result.mean_gain("CE-BF")
    assert result.mean_gain("SNS") > result.mean_gain("CS")
    assert result.wins_over("SNS", "CE-BF") >= 8
    print()
    print(format_baselines(result))
