"""Bench: Fig 4 — per-node memory-bandwidth consumption by placement.

Paper: MG draws ~112 GB/s solo (node saturated) and ~67.6 GB/s per node
at two nodes; EP/BFS are bandwidth-light solo; BFS's bandwidth rises
when spread.
"""

import pytest

from repro.experiments.fig04_bandwidth import format_fig04, run_fig04


def test_fig04_bandwidth_by_placement(benchmark):
    result = benchmark(run_fig04)
    bw = result.bandwidth
    assert bw["MG"][1] > 105.0
    assert bw["MG"][2] == pytest.approx(67.6, rel=0.15)
    assert bw["EP"][1] < 0.5
    assert bw["BFS"][2] > bw["BFS"][1]
    print()
    print(format_fig04(result))
