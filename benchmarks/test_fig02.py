"""Bench: Fig 2 — scaling behaviour of 16-process runs.

Paper: MG benefits most from spreading, CG peaks at 2 nodes, EP is
flat, BFS performs best on a single node.
"""

from repro.experiments.fig02_scaling import format_fig02, run_fig02


def test_fig02_scaling_behaviour(benchmark):
    result = benchmark(run_fig02)
    speedup = result.speedup
    assert max(speedup["MG"].values()) == max(
        max(s.values()) for s in speedup.values()
    )
    assert speedup["CG"][2] > speedup["CG"][4] > speedup["CG"][8]
    assert all(abs(s - 1.0) < 0.05 for s in speedup["EP"].values())
    assert all(s <= 1.0 for s in speedup["BFS"].values())
    print()
    print(format_fig02(result))
