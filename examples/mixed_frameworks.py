#!/usr/bin/env python3
"""Cross-framework co-location: the paper's Fig 1 scenario, extended.

Uberun schedules *across* frameworks — MPI (NPB), Spark (HiBench),
TensorFlow, and replicated sequential (SPEC) jobs land on the same
nodes when their resource demands are complementary.  This example
submits one job per framework plus a bandwidth hog, shows the SNS
placement (who shares a node with whom, and the per-node way split),
and compares node usage against CE.

    python examples/mixed_frameworks.py
"""

from collections import defaultdict

from repro import (
    ClusterSpec,
    CompactExclusiveScheduler,
    Job,
    SimConfig,
    Simulation,
    SpreadNShareScheduler,
    get_program,
)
from repro.workloads.sequences import clone_jobs


def main() -> None:
    cluster = ClusterSpec(num_nodes=4)
    jobs = [
        Job(job_id=0, program=get_program("MG"), procs=16),   # MPI, mem-BW hog
        Job(job_id=1, program=get_program("TS"), procs=16),   # Spark, cache-loving
        Job(job_id=2, program=get_program("NW"), procs=16),   # Spark, cache hog
        Job(job_id=3, program=get_program("RNN"), procs=16),  # TensorFlow, 1 node
        Job(job_id=4, program=get_program("HC"), procs=16),   # SPEC replicas
    ]

    for name, policy_cls in (
        ("CE", CompactExclusiveScheduler), ("SNS", SpreadNShareScheduler),
    ):
        result = Simulation(
            cluster, policy_cls(cluster), clone_jobs(jobs),
            SimConfig(telemetry=False),
        ).run()
        print(f"=== {name}: makespan {result.makespan:.0f}s, "
              f"node-seconds {result.node_seconds():.0f}")
        by_node = defaultdict(list)
        for job in result.finished_jobs:
            for nid in job.placement.node_ids:
                by_node[nid].append(job)
        for nid in sorted(by_node):
            residents = ", ".join(
                f"{j.program.name}({j.program.framework},"
                f"{j.placement.procs_per_node[nid]}c,"
                f"{j.placement.dedicated_ways}w)"
                for j in sorted(by_node[nid], key=lambda j: j.job_id)
            )
            print(f"  node {nid}: {residents}")
        for job in sorted(result.finished_jobs, key=lambda j: j.job_id):
            print(f"  {job.program.name:4s} wait {job.wait_time:6.0f}s  "
                  f"run {job.run_time:6.0f}s  scale {job.scale_factor}x")
        print()


if __name__ == "__main__":
    main()
