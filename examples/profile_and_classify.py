#!/usr/bin/env python3
"""Profiling pipeline demo: Kunafa-style trial ladders for every program.

Runs the scaling trial ladder (exclusive runs at 1x/2x/4x/8x with
LLC-manipulation sampling) for all 12 catalog programs, classifies them
(scaling / compact / neutral), identifies the constraining resource, and
saves/reloads the JSON profile database exactly as Uberun stores it.

    python examples/profile_and_classify.py [output.json]
"""

import sys
import tempfile
from pathlib import Path

from repro import NodeSpec, PROGRAMS, ProfileDatabase
from repro.profiling.profiler import profile_program


def main() -> None:
    spec = NodeSpec()
    db = ProfileDatabase()

    print(f"{'prog':5s} {'class':8s} {'ideal':>5s} {'bound':>10s}  "
          f"exclusive time by scale")
    for name, program in PROGRAMS.items():
        profile = profile_program(
            program, procs=16, spec=spec, max_cluster_nodes=8,
            max_degradation=float("inf"),
        )
        db.put(16, profile)
        times = "  ".join(
            f"{k}x:{p.time_s:7.1f}s" for k, p in sorted(profile.scales.items())
        )
        bound = profile.constraining_resource(spec) or "-"
        print(f"{name:5s} {profile.scaling_class.value:8s} "
              f"{profile.ideal_scale:>4}x {bound:>10s}  {times}")

    out = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "sns_profiles.json"
    )
    db.save(out)
    reloaded = ProfileDatabase.load(out)
    assert len(reloaded) == len(db)
    print(f"\nProfile database saved to {out} "
          f"({len(db)} profiles, JSON round-trip verified)")

    cg = reloaded.get("CG", 16).get(1)
    print("\nCG IPC-LLC curve (profiled at 2/4/8/20 ways, interpolated):")
    for w in (2, 4, 6, 8, 10, 12, 16, 20):
        bar = "#" * int(cg.ipc_llc(float(w)) * 40)
        print(f"  {w:2d} ways  {cg.ipc_llc(float(w)):5.2f} IPC  {bar}")


if __name__ == "__main__":
    main()
