#!/usr/bin/env python3
"""Quickstart: schedule one random job sequence under CE, CS, and SNS.

Runs the paper's three policies on the 8-node testbed cluster and prints
the throughput, average times, and per-job schedule of the SNS run.

    python examples/quickstart.py [seed]
"""

import sys

from repro import (
    ClusterSpec,
    CompactExclusiveScheduler,
    CompactShareScheduler,
    SimConfig,
    Simulation,
    SpreadNShareScheduler,
    random_sequence,
)
from repro.metrics.times import breakdown
from repro.workloads.sequences import clone_jobs


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    cluster = ClusterSpec(num_nodes=8)
    jobs = random_sequence(seed=seed, n_jobs=20)

    print(f"Sequence (seed {seed}):",
          ", ".join(f"{j.program.name}x{j.procs}" for j in jobs))
    print()

    results = {}
    for name, policy_cls in (
        ("CE", CompactExclusiveScheduler),
        ("CS", CompactShareScheduler),
        ("SNS", SpreadNShareScheduler),
    ):
        policy = policy_cls(cluster)
        results[name] = Simulation(
            cluster, policy, clone_jobs(jobs), SimConfig(telemetry=False)
        ).run()

    print(f"{'policy':6s} {'makespan':>10s} {'throughput':>11s} "
          f"{'avg wait':>9s} {'avg run':>9s}")
    for name, result in results.items():
        bd = breakdown(result)
        print(f"{name:6s} {result.makespan:9.0f}s {result.throughput()*1e3:10.4f}/ks "
              f"{bd.wait:8.0f}s {bd.run:8.0f}s")

    ce, sns = results["CE"], results["SNS"]
    print(f"\nSNS throughput gain over CE: "
          f"{sns.throughput() / ce.throughput() - 1.0:+.1%}")

    print("\nSNS schedule:")
    for job in sorted(sns.finished_jobs, key=lambda j: j.start_time):
        p = job.placement
        print(f"  t={job.start_time:6.0f}s  {job.program.name:4s} "
              f"p{job.procs:<3d} scale {job.scale_factor}x on "
              f"{p.n_nodes} node(s), {p.dedicated_ways:2d} LLC ways, "
              f"{p.booked_bw:5.1f} GB/s booked -> ran {job.run_time:6.0f}s")


if __name__ == "__main__":
    main()
