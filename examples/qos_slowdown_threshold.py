#!/usr/bin/env python3
"""The QoS knob: per-job slowdown thresholds and MBA enforcement.

The slowdown threshold alpha tells SNS how much co-scheduling slowdown
a job tolerates (paper Section 4.3, default 0.9).  Stricter alpha books
more LLC ways per job — better per-job QoS, less co-location.  With the
Intel-MBA-style hard bandwidth enforcement (Section 5.2) the bandwidth
side of the booking becomes a guarantee too.

    python examples/qos_slowdown_threshold.py
"""

from repro import (
    ClusterSpec,
    CompactExclusiveScheduler,
    SchedulerConfig,
    SimConfig,
    Simulation,
    SpreadNShareScheduler,
    random_sequence,
)
from repro.metrics.times import normalized_runtimes
from repro.workloads.sequences import clone_jobs


def run_variant(jobs, cluster, alpha=None, enforce_bw=False):
    config = SchedulerConfig(
        default_alpha=alpha if alpha is not None else 0.9,
        enforce_bw=enforce_bw,
    )
    policy = SpreadNShareScheduler(cluster, config)
    return Simulation(cluster, policy, clone_jobs(jobs),
                      SimConfig(telemetry=False)).run()


def main() -> None:
    cluster = ClusterSpec(num_nodes=8)
    jobs = random_sequence(seed=5, n_jobs=20)
    ce = Simulation(
        cluster, CompactExclusiveScheduler(cluster), clone_jobs(jobs),
        SimConfig(telemetry=False),
    ).run()

    print(f"{'variant':>18s} {'throughput vs CE':>17s} "
          f"{'worst job slowdown':>19s} {'alpha violations':>17s}")
    for label, alpha, mba in (
        ("alpha=0.70", 0.70, False),
        ("alpha=0.90 (dflt)", 0.90, False),
        ("alpha=0.99", 0.99, False),
        ("alpha=0.90 + MBA", 0.90, True),
    ):
        result = run_variant(jobs, cluster, alpha=alpha, enforce_bw=mba)
        norm = normalized_runtimes(result, ce)
        bound = 1.0 / alpha
        violations = sum(1 for v in norm.values() if v > bound + 1e-9)
        print(f"{label:>18s} {result.throughput()/ce.throughput()-1:>+16.1%} "
              f"{max(norm.values()):>18.2f}x {violations:>13d}/20")

    print("\nLower alpha = more aggressive co-location (throughput up, "
          "per-job QoS down);\nMBA turns the bandwidth booking from an "
          "estimate into a hard guarantee.")


if __name__ == "__main__":
    main()
