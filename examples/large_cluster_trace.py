#!/usr/bin/env python3
"""Trace-driven large-cluster simulation (the paper's Fig 20, reduced).

Synthesizes a Trinity-like job trace, replays it under CE and SNS on
simulated clusters of 4,096 and 8,192 nodes, and prints the wait/run
breakdown.  The full-size replay (7,044 jobs, four cluster sizes, two
scaling ratios) runs via:

    python -m repro run fig20            # full paper configuration
    python examples/large_cluster_trace.py [n_jobs]   # reduced demo
"""

import sys
import time

from repro.experiments.fig20_large_cluster import (
    format_fig20,
    run_fig20,
    smoke_trace_config,
)


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    duration = 160.0 * n_jobs / 600.0
    print(f"Synthesizing a {n_jobs}-job Trinity-like trace "
          f"({duration:.0f} simulated hours) ...")
    t0 = time.time()
    result = run_fig20(
        cluster_sizes=(4096, 8192),
        scaling_ratios=(0.9, 0.5),
        trace_config=smoke_trace_config(n_jobs=n_jobs,
                                        duration_hours=duration),
    )
    print(format_fig20(result))
    print(f"\n(4 cluster configurations x 2 policies simulated in "
          f"{time.time() - t0:.1f}s wall time)")
    congested = result.get(4096, 0.9)
    relaxed = result.get(8192, 0.9)
    print(f"4K @0.9: wait-dominated ({congested.ce_wait:.0%} of CE "
          f"turnaround is wait)")
    print(f"8K @0.9: SNS turnaround gain {relaxed.sns_turnaround_gain:+.1%}")


if __name__ == "__main__":
    main()
