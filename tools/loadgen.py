#!/usr/bin/env python3
"""Load generator for the live scheduler service (DESIGN.md §12).

Replays Trinity-like synthetic arrivals against a running
``repro-sns serve`` master (or one started in-process with ``--serve``)
and reports sustained submission throughput plus submit→place latency
percentiles — the service's two headline numbers:

    PYTHONPATH=src python tools/loadgen.py --serve --jobs 100
    PYTHONPATH=src python tools/loadgen.py --host 127.0.0.1 --port 7044
    PYTHONPATH=src python tools/loadgen.py --serve --speedup 1000

``--speedup N`` paces submissions at N× real time (virtual arrival
gaps shrink by N on the wall clock); the default ``--speedup 0`` is
firehose mode — submit as fast as the service admits, which is how the
CI smoke job measures peak sustainable rate (``--min-rate`` turns the
measured rate into a gate, exit 4 when unmet).

Submit→place latency is measured **at the master** (wall-clock stamp at
admission, closed by the placement's audit-log record), so the numbers
exclude client-side think time; this tool just fetches and summarizes
them.  Backpressure rejections (``retryable: true``) are retried after
a short backoff and counted in the report.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional

from repro.service import ServiceClient
from repro.workloads.trace import SyntheticTraceConfig, synthesize_trace


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list."""
    if not sorted_values:
        raise ValueError("no values")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def parse_fabric(spec: Optional[str]):
    """Parse ``--fabric RACK_SIZE:OVERSUB`` (e.g. ``8:4``) into a
    :class:`~repro.hardware.fabric.FabricSpec`; ``None`` stays flat."""
    if spec is None:
        return None
    from repro.hardware.fabric import FabricSpec

    parts = spec.split(":")
    if len(parts) != 2:
        raise SystemExit(
            f"loadgen: bad --fabric {spec!r} (expected RACK_SIZE:OVERSUB, "
            f"e.g. 8:4)"
        )
    try:
        rack_size, oversub = int(parts[0]), float(parts[1])
    except ValueError:
        raise SystemExit(
            f"loadgen: bad --fabric {spec!r} (expected RACK_SIZE:OVERSUB, "
            f"e.g. 8:4)"
        ) from None
    return FabricSpec(rack_size=rack_size, oversubscription=oversub)


def smoke_workload(seed: int, n_jobs: int, max_width: int):
    """A small Trinity-shaped arrival stream: power-law widths capped
    at ``max_width`` nodes, log-normal runtimes, bursty arrivals over
    one virtual hour."""
    config = SyntheticTraceConfig(
        n_jobs=n_jobs,
        duration_hours=1.0,
        max_width_nodes=max_width,
        runtime_median_s=600.0,
        runtime_max_s=4 * 3600.0,
    )
    return synthesize_trace(seed, 0.9, config=config)


def replay(client: ServiceClient, jobs, *, speedup: float,
           retry_backoff_s: float = 0.01,
           max_retries: int = 1000) -> dict:
    """Submit every job (paced when ``speedup > 0``), retrying
    backpressure rejections; returns wall timing and counts."""
    t0 = time.monotonic()
    accepted = 0
    retried = 0
    for job in jobs:
        if speedup > 0:
            target = t0 + job.submit_time / speedup
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        payload = {
            "program": job.program.name,
            "procs": job.procs,
            "job_id": job.job_id,
            "submit_time": job.submit_time,
            "work_multiplier": job.work_multiplier,
        }
        attempts = 0
        while True:
            reply = client.submit(**payload)
            if reply.get("ok", False):
                accepted += 1
                break
            attempts += 1
            retried += 1
            if attempts > max_retries:
                raise RuntimeError(
                    f"job {job.job_id} rejected {attempts} times; giving up"
                )
            time.sleep(retry_backoff_s)
    wall = time.monotonic() - t0
    return {"accepted": accepted, "retried": retried, "wall": wall}


def run(args: argparse.Namespace) -> int:
    jobs = smoke_workload(args.seed, args.jobs, args.max_width)
    handle = None
    if args.serve:
        from repro.config import SimConfig
        from repro.hardware.topology import ClusterSpec
        from repro.service import SchedulerMaster, serve_in_thread
        from repro.sim.runtime import SchedulerCore

        fabric = parse_fabric(args.fabric)
        core = SchedulerCore.from_policy_name(
            args.policy, ClusterSpec(num_nodes=args.nodes, fabric=fabric),
            sim_config=SimConfig(
                telemetry=False,
                perf_caches=False if args.no_caches else None,
            ),
        )
        master = SchedulerMaster(core, queue_limit=args.queue_limit)
        handle = serve_in_thread(master)
        host, port = handle.host, handle.port
        topo = "flat network" if fabric is None else (
            f"racks of {fabric.rack_size}, "
            f"{fabric.oversubscription:g}:1 oversub"
        )
        print(f"loadgen: started in-process service on {host}:{port} "
              f"(policy {args.policy}, {args.nodes} nodes, {topo})")
    else:
        host, port = args.host, args.port

    pace = "firehose" if args.speedup <= 0 else f"{args.speedup:g}x real time"
    print(f"loadgen: replaying {len(jobs)} Trinity-like arrivals "
          f"to {host}:{port} ({pace})")
    exit_code = 0
    try:
        with ServiceClient(host, port) as client:
            client.ping()
            stats = replay(client, jobs, speedup=args.speedup)
            rate = stats["accepted"] / stats["wall"] if stats["wall"] > 0 \
                else float("inf")
            print(f"submitted {stats['accepted']} jobs in "
                  f"{stats['wall']:.3f}s wall "
                  f"({stats['retried']} backpressure retries) "
                  f"-> {rate:.1f} submits/s")
            summary = client.drain()
            lat = client.latencies()
            latencies = sorted(lat["latencies"])
            if not latencies:
                print("no jobs were placed; nothing to report")
                exit_code = 1
            else:
                p50 = percentile(latencies, 0.50) * 1e3
                p95 = percentile(latencies, 0.95) * 1e3
                p99 = percentile(latencies, 0.99) * 1e3
                print(f"placed {lat['placed']} jobs; submit->place latency "
                      f"p50={p50:.2f}ms p95={p95:.2f}ms p99={p99:.2f}ms")
            print(f"drain: makespan={summary['makespan']:.1f}s virtual, "
                  f"finished={summary['finished']}, "
                  f"failed={summary['failed']}, "
                  f"events={summary['events']}")
            if lat["awaiting"]:
                print(f"ERROR: {lat['awaiting']} submissions never placed")
                exit_code = 1
            if summary["finished"] + summary["failed"] != stats["accepted"]:
                print("ERROR: drain did not account for every submission")
                exit_code = 1
            if args.min_rate > 0 and rate < args.min_rate:
                print(f"ERROR: sustained {rate:.1f} submits/s "
                      f"< required {args.min_rate:.1f}")
                exit_code = 4
            if args.shutdown or args.serve:
                client.shutdown()
    finally:
        if handle is not None:
            handle.stop()
            print("clean shutdown")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7044)
    parser.add_argument(
        "--serve", action="store_true",
        help="start an in-process service (ignores --host/--port) and "
             "shut it down afterwards — the CI smoke mode",
    )
    parser.add_argument("--policy", default="SNS",
                        choices=("CE", "CE-BF", "CS", "SNS"),
                        help="policy for --serve (default SNS)")
    parser.add_argument("--nodes", type=int, default=32,
                        help="cluster size for --serve (default 32)")
    parser.add_argument("--queue-limit", type=int, default=256,
                        help="admission queue bound for --serve")
    parser.add_argument("--no-caches", action="store_true",
                        help="run --serve on the reference kernels")
    parser.add_argument(
        "--fabric", default=None, metavar="RACK_SIZE:OVERSUB",
        help="leaf-spine fabric for --serve (e.g. 8:4 = racks of 8 at "
             "4:1 oversubscription); default flat network",
    )
    parser.add_argument("--jobs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-width", type=int, default=4,
                        help="widest job in nodes (default 4)")
    parser.add_argument(
        "--speedup", type=float, default=0.0,
        help="replay arrivals at Nx real time (0 = firehose, default)",
    )
    parser.add_argument(
        "--min-rate", type=float, default=0.0, metavar="R",
        help="fail (exit 4) if sustained submit rate drops below R/s",
    )
    parser.add_argument("--shutdown", action="store_true",
                        help="send shutdown to a remote service when done")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
