#!/usr/bin/env python3
"""Calibration verification sweep for the program catalog.

Prints, for every catalog program, the quantities the paper reports —
solo bandwidth, scaling speedups, least ways for 90 % performance,
scaling class — next to the target band each must land in.  Run after
touching any :mod:`repro.apps.catalog` parameter:

    python tools/calibrate.py

Exit code is non-zero if any program leaves its band (the same bands
are enforced by tests/test_catalog.py; this tool exists for the humans
doing the tuning, with full numbers instead of pass/fail).
"""

from __future__ import annotations

import sys

from repro.apps.catalog import PROGRAMS, SCALING_CLASS_EXPECTED, get_program
from repro.hardware.node_spec import NodeSpec
from repro.perfmodel.execution import predict_exclusive_time, reference_time
from repro.profiling.classify import ScalingClass, classify

SPEC = NodeSpec()

#: ways-for-90 % target bands (tests/test_catalog.py keeps these in sync).
WAYS90_BANDS = {
    "EP": (1, 2), "HC": (1, 3), "WC": (1, 4), "MG": (2, 4),
    "LU": (3, 6), "BW": (3, 6), "GAN": (3, 7), "RNN": (3, 6),
    "CG": (8, 12), "TS": (9, 14), "NW": (12, 18), "BFS": (12, 18),
}


def solo_bandwidth(name: str, procs: int = 16) -> float:
    program = get_program(name)
    cap = SPEC.cache.ways_to_mb(float(SPEC.llc_ways)) / procs
    demand = program.demand_gbps_per_proc(cap, 1) * procs
    return min(demand, SPEC.bandwidth.aggregate(procs))


def ways90(name: str, procs: int = 16) -> int:
    program = get_program(name)
    t_full = predict_exclusive_time(program, procs, 1, SPEC,
                                    ways=SPEC.llc_ways)
    for w in range(1, SPEC.llc_ways + 1):
        if t_full / predict_exclusive_time(
            program, procs, 1, SPEC, ways=w
        ) >= 0.9:
            return w
    return SPEC.llc_ways


def main() -> int:
    failures = 0
    header = (f"{'prog':5s} {'bw16':>7s} {'2x':>6s} {'4x':>6s} {'8x':>6s} "
              f"{'w90':>4s} {'band':>8s} {'class':>8s} {'expected':>8s}")
    print(header)
    print("-" * len(header))
    for name, program in PROGRAMS.items():
        t_ref = reference_time(program, 16, SPEC)
        speedups = {}
        for n in (2, 4, 8):
            if program.max_nodes is not None and n > program.max_nodes:
                continue
            speedups[n] = t_ref / predict_exclusive_time(
                program, 16, n, SPEC
            )
        if speedups:
            times = {1: t_ref}
            times.update({n: t_ref / s for n, s in speedups.items()})
            cls = classify(times)
        else:
            cls = ScalingClass.NEUTRAL
        w = ways90(name)
        lo, hi = WAYS90_BANDS[name]
        expected = SCALING_CLASS_EXPECTED.get(name, "neutral")
        ok_ways = lo <= w <= hi
        ok_class = cls.value == expected
        if not (ok_ways and ok_class):
            failures += 1
        marks = "" if (ok_ways and ok_class) else "  <-- OUT OF BAND"
        cells = [f"{speedups.get(n, float('nan')):6.3f}" for n in (2, 4, 8)]
        print(f"{name:5s} {solo_bandwidth(name):7.1f} {' '.join(cells)} "
              f"{w:4d} {f'{lo}-{hi}':>8s} {cls.value:>8s} "
              f"{expected:>8s}{marks}")
    if failures:
        print(f"\n{failures} program(s) out of band")
        return 1
    print("\nall programs within their calibration bands")
    return 0


if __name__ == "__main__":
    sys.exit(main())
