#!/usr/bin/env python3
"""Wall-clock benchmark of the Fig 20 smoke grid.

Times the fixed smoke-trace grid — 2 scaling ratios x 2 cluster sizes x
{CE, SNS} on ``smoke_trace_config()`` — and writes/merges the numbers
into ``BENCH_sim.json`` at the repo root, so perf regressions in the
event loop show up as numbers, not vibes:

    PYTHONPATH=src python tools/bench_report.py [--label after]
    PYTHONPATH=src python tools/bench_report.py --no-caches --label ref
    PYTHONPATH=src python tools/bench_report.py --threads 4
    PYTHONPATH=src python tools/bench_report.py --trace-gate

``--trace-gate`` runs the grid twice — untraced, then with a
full-level tracer — and enforces the DESIGN.md §10 observability
contract: bit-identical results, invariant replay on every traced
config, and at most 10 % wall-clock overhead (see
:func:`run_trace_gate`).

Each entry records per-configuration wall seconds, simulated events,
events/second, and the kernel counters (batched arbitration solves,
coalesced events, skip-index hits, nodes scanned — see DESIGN.md §7),
plus the grid total.  Existing entries under other labels are
preserved, so a before/after pair can live side by side.

``--threads N`` runs the grid on the thread executor of the unified
runner (:func:`repro.experiments.parallel.run_grid` with
``executor="threads"``): every
simulation owns a private :class:`~repro.perfmodel.context.PerfContext`,
so interleaved runs must be bit-identical to serial ones — the
divergence gate below enforces exactly that against any serial entry
already in BENCH_sim.json.

Every fast path in the simulator is required to be *bit-identical* to
the reference kernels, so after timing, this script cross-checks the
makespan and mean turnaround of every configuration against every
other entry already in BENCH_sim.json and **exits non-zero (2) on any
divergence** — a perf "win" that changes results is a bug, and CI
treats it as one.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import SimConfig, TraceConfig         # noqa: E402
from repro.experiments.common import run_all_policies   # noqa: E402
from repro.experiments.fig20_large_cluster import (     # noqa: E402
    smoke_trace_config,
)
# Renamed import: this script's own run_grid() is the benchmark driver.
from repro.experiments.parallel import (                # noqa: E402
    run_grid as run_grid_tasks,
)
from repro.hardware.topology import ClusterSpec         # noqa: E402
from repro.obs import verify_trace, write_chrome_trace  # noqa: E402
from repro.workloads.trace import (                     # noqa: E402
    SyntheticTraceConfig,
    synthesize_trace,
)

#: The benchmark grid (fixed: changing it would break comparability).
RATIOS = (0.9, 0.5)
SIZES = (4096, 8192)
POLICIES = ("CE", "SNS")
SEED = 42

#: The full-scale grid (``--full``): the paper's headline Fig 20
#: configuration — the complete 7,044-job Trinity-like trace on the
#: 32,768-node cluster at scaling ratio 0.9 — under both policies.
FULL_RATIOS = (0.9,)
FULL_SIZES = (32768,)

#: Kernel counters copied into each config entry (DESIGN.md §7).
COUNTER_COLUMNS = (
    "events_coalesced",
    "refresh_cycles",
    "arb_nodes_solved",
    "view_cache_hits",
    "nodes_scanned",
    "find_fail_hits",
    "jobs_skipped",
    "demand_cache_hits",
    "vec_curve_evals",
    "vec_finish_updates",
    "fabric_link_refreshes",
    "fabric_route_evals",
)


def _run_one(task: tuple) -> dict:
    """One grid point: an independent simulation with a private
    PerfContext (``SimConfig.perf_caches`` picks the cache mode), so
    this worker is safe to run on any thread.

    With ``trace=True`` the run carries a full-level tracer (the
    maximum-observability configuration: every record kind plus the
    time-series collector); the resulting trace is replayed through the
    invariant checker after the timed region, and optionally exported
    as a Chrome trace (``chrome_out``)."""
    ratio, nodes, policy, jobs, caches, trace, chrome_out = task
    cluster = ClusterSpec(num_nodes=nodes)
    trace_config = TraceConfig(level="full") if trace else None
    start = time.perf_counter()
    runs = run_all_policies(
        cluster, jobs, policy_names=(policy,),
        sim_config=SimConfig(telemetry=False, max_sim_time=1e12,
                             perf_caches=caches, trace=trace_config),
    )
    wall = time.perf_counter() - start
    result = runs[policy]
    entry = {
        "policy": policy,
        "nodes": nodes,
        "ratio": ratio,
        "wall_s": round(wall, 4),
        "events": result.events,
        "events_per_s": round(result.events / wall, 1),
        "makespan": result.makespan,
        "mean_turnaround": result.mean_turnaround(),
        "counters": {
            key: result.counters.get(key, 0)
            for key in COUNTER_COLUMNS
        },
    }
    if trace:
        tracer = result.trace
        assert tracer is not None
        # Invariant replay (outside the timed region): every smoke-grid
        # experiment's trace must satisfy the conservation laws.
        verify_trace(tracer.events,
                     label=f"{policy}/{nodes}/{ratio}")
        entry["trace_records"] = len(tracer.events)
        if chrome_out:
            write_chrome_trace(tracer.events, chrome_out,
                               tracer.timeseries)
    return entry


def run_grid(caches: bool = True, threads: int = 1, processes: int = 1,
             verbose: bool = True, trace: bool = False,
             chrome_out: Optional[str] = None, full: bool = False) -> dict:
    """Run the smoke grid once; returns the BENCH_sim entry payload.

    ``threads > 1`` interleaves the grid points on a thread pool
    (``run_grid(..., executor="threads")``) and ``processes > 1``
    shards them across forked worker processes
    (``executor="shard"``); either way the
    per-config results are bit-identical to a serial run by the
    state-ownership contract (DESIGN.md §9).  ``trace=True`` runs every
    grid point with a full-level tracer and replays each trace through
    the invariant checker; ``chrome_out`` additionally exports the first
    SNS config's Chrome trace.  ``full=True`` swaps in the full-scale
    Fig 20 grid (complete Trinity-like trace, 32K nodes)."""
    if full:
        trace_config = SyntheticTraceConfig()
        ratios, sizes = FULL_RATIOS, FULL_SIZES
        grid_name = "fig20-full 32k"
    else:
        trace_config = smoke_trace_config()
        ratios, sizes = RATIOS, SIZES
        grid_name = "fig20-smoke 2x2x2"
    tasks: List[list] = []
    for ratio in ratios:
        jobs = synthesize_trace(seed=SEED, scaling_ratio=ratio,
                                config=trace_config)
        for nodes in sizes:
            for policy in POLICIES:
                tasks.append([ratio, nodes, policy, jobs, caches,
                              trace, None])
    if chrome_out is not None:
        for task in tasks:
            if task[2] == "SNS":
                task[6] = chrome_out
                break
    tasks = [tuple(t) for t in tasks]
    start = time.perf_counter()
    if processes > 1:
        configs = run_grid_tasks(_run_one, tasks, executor="shard",
                                 jobs=processes)
    elif threads > 1:
        configs = run_grid_tasks(_run_one, tasks, executor="threads",
                                 jobs=threads)
    else:
        configs = run_grid_tasks(_run_one, tasks)
    elapsed = time.perf_counter() - start
    total_events = sum(c["events"] for c in configs)
    if verbose:
        for c in configs:
            print(f"  {c['policy']:3s} {c['nodes']:5d} nodes "
                  f"ratio {c['ratio']}: "
                  f"{c['wall_s']:6.2f}s  {c['events']} events  "
                  f"{c['events_per_s']:7.0f} ev/s")
    # Serial entries report summed per-config wall time (comparable to
    # older entries); threaded/sharded entries report overall elapsed,
    # since per-config clocks overlap.
    total_wall = elapsed if threads > 1 or processes > 1 \
        else sum(c["wall_s"] for c in configs)
    return {
        "grid": grid_name,
        "caches": caches,
        "threads": threads,
        "processes": processes,
        "trace": trace,
        "total_wall_s": round(total_wall, 4),
        "total_events": total_events,
        "events_per_s": round(total_events / total_wall, 1),
        "configs": configs,
    }


def check_divergence(report: dict, label: str) -> List[str]:
    """Cross-check results of every same-grid entry pair in ``report``.

    All entries replay the same traces with the same seed, so their
    per-configuration makespans and mean turnarounds must agree exactly
    — fast paths are contractually bit-identical to the reference, and
    thread-interleaved runs to serial ones.  Returns a list of
    human-readable divergence descriptions (empty when everything
    matches).
    """
    grids: Dict[str, Dict[tuple, tuple]] = {}
    problems: List[str] = []
    for name, entry in report.items():
        seen = grids.setdefault(entry.get("grid", "?"), {})
        for config in entry.get("configs", []):
            key = (config["policy"], config["nodes"], config["ratio"])
            results = (config["makespan"], config["mean_turnaround"])
            known = seen.get(key)
            if known is None:
                seen[key] = (name, results)
            elif known[1] != results:
                problems.append(
                    f"{key}: '{name}' {results} != '{known[0]}' {known[1]}"
                )
    return problems


#: Full tracing may cost at most this factor in grid wall-clock
#: (DESIGN.md §10 overhead budget; the trace gate exits 3 beyond it).
TRACE_OVERHEAD_LIMIT = 1.10

#: Wall-clock regression threshold: a ``current`` run slower than this
#: factor times the committed ``current`` entry draws a CI warning (the
#: machine-noise band is well under 15 %; bit-identity stays the hard
#: gate).
WALL_REGRESSION_LIMIT = 1.15

#: How many rows of the cProfile cumulative-time table ``--profile``
#: prints and writes to the artifact file.
PROFILE_TOP_N = 25


def run_profiled(args: argparse.Namespace) -> int:
    """``--profile``: run the serial smoke grid under :mod:`cProfile`
    and emit the top-``PROFILE_TOP_N`` cumulative-time table — printed,
    and written to ``--profile-out`` as a CI artifact.  Profiled walls
    are *not* comparable to normal entries (instrumentation overhead is
    roughly 2x on this Python-heavy code), so nothing is written to
    BENCH_sim.json."""
    import cProfile
    import io
    import pstats

    caches = not args.no_caches
    print(f"profiling fig20 smoke grid "
          f"(caches {'on' if caches else 'off'}, serial, "
          f"cProfile) ...")
    profiler = cProfile.Profile()
    profiler.enable()
    entry = run_grid(caches=caches, full=args.full)
    profiler.disable()
    print(f"total (instrumented): {entry['total_wall_s']:.2f}s")
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
    table = buf.getvalue()
    print(table)
    out = Path(args.profile_out)
    out.write_text(table)
    print(f"wrote profile artifact to {out}")
    return 0


def run_trace_gate(args: argparse.Namespace) -> int:
    """The tracer-overhead gate (``--trace-gate``).

    Runs the smoke grid twice — untraced, then with full-level tracing —
    and enforces the DESIGN.md §10 observability contract:

    * traced results are **bit-identical** to untraced ones (and to any
      committed BENCH_sim.json entry) — exit 2 on divergence;
    * every traced config's record stream passes the invariant replay
      (:func:`repro.obs.verify_trace` raises inside the worker);
    * the traced grid costs at most ``TRACE_OVERHEAD_LIMIT`` x the
      untraced wall-clock — exit 3 beyond the budget.

    Results are compared in memory only; nothing is written to
    BENCH_sim.json (the gate is not a benchmark baseline).
    """
    print("trace gate: smoke grid untraced vs --trace-level full ...")
    # Two repetitions per pass, best total kept: the walls being
    # compared differ by less than run-to-run machine noise, so a
    # single-shot ratio would make the gate flaky.
    plain = traced = None
    for rep in range(2):
        print(f"untraced pass {rep + 1}:")
        entry = run_grid(caches=True, threads=1, verbose=rep == 0)
        print(f"  total {entry['total_wall_s']:.2f}s")
        if plain is None or entry["total_wall_s"] < plain["total_wall_s"]:
            plain = entry
        print(f"traced pass {rep + 1} (full level):")
        entry = run_grid(caches=True, threads=1, verbose=rep == 0,
                         trace=True, chrome_out=args.chrome_out)
        print(f"  total {entry['total_wall_s']:.2f}s")
        if traced is None \
                or entry["total_wall_s"] < traced["total_wall_s"]:
            traced = entry

    report = {"untraced": plain, "traced-full": traced}
    path = Path(args.output)
    if path.exists():
        for name, entry in json.loads(path.read_text()).items():
            report.setdefault(f"bench:{name}", entry)
    problems = check_divergence(report, "traced-full")
    if problems:
        print(f"FATAL: tracing changed results "
              f"({len(problems)} mismatches):", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 2

    records = sum(c.get("trace_records", 0) for c in traced["configs"])
    print(f"invariant replay: OK on {len(traced['configs'])} configs "
          f"({records} trace records)")
    if args.chrome_out:
        print(f"wrote Chrome trace artifact to {args.chrome_out}")
    overhead = traced["total_wall_s"] / plain["total_wall_s"]
    print(f"tracer overhead: {overhead:.3f}x "
          f"(budget {TRACE_OVERHEAD_LIMIT:.2f}x)")
    if overhead > TRACE_OVERHEAD_LIMIT:
        print("FATAL: full tracing exceeds the wall-clock overhead "
              "budget", file=sys.stderr)
        return 3
    print("trace gate passed")
    return 0


def run_oversub_gate(args: argparse.Namespace) -> int:
    """``--oversub-gate``: the leaf-spine fabric smoke entry.

    Runs the fig_oversub sweep (CE/CS/SNS/locality-aware SNS while ToR
    oversubscription sweeps 1:1 → 8:1 on the default 64-node, rack-of-4
    cluster) and enforces two contracts:

    * **flat-degenerate bit-identity** — every 1:1 point must reproduce
      the same variant replayed on a fabric-less ``ClusterSpec``
      exactly, and the whole grid must match any committed
      ``fig-oversub`` entry in BENCH_sim.json (exit 2 on divergence);
    * **locality divergence** — at the top swept ratio, locality-aware
      SNS must evaluate strictly fewer fabric routes than plain SNS (it
      fills racks before crossing the spine), so the knob failing to
      change placements turns the gate red rather than passing quietly.

    The grid is merged into BENCH_sim.json under ``fig-oversub`` with
    the fabric link counters alongside the headline numbers.
    """
    from repro.experiments.fig_oversub import (
        N_JOBS, NUM_NODES as OV_NODES, PROGRAMS, SEED as OV_SEED,
        VARIANTS, _variant_config, format_fig_oversub, run_fig_oversub,
    )
    from repro.workloads.sequences import random_sequence

    print("oversub gate: fig_oversub sweep "
          f"({OV_NODES} nodes, {N_JOBS} jobs) ...")
    start = time.perf_counter()
    result = run_fig_oversub()
    elapsed = time.perf_counter() - start
    print(format_fig_oversub(result))
    print(f"total: {elapsed:.2f}s")

    # Flat-degenerate contract: a 1:1 fabric must be indistinguishable
    # from no fabric at all, bit for bit.
    sequence = random_sequence(seed=OV_SEED, n_jobs=N_JOBS,
                               program_names=PROGRAMS)
    problems = []
    ratios = sorted({p.oversub for p in result.points})
    for variant in VARIANTS:
        policy, sched_config = _variant_config(variant)
        flat = run_all_policies(
            ClusterSpec(num_nodes=OV_NODES), sequence,
            policy_names=(policy,), scheduler_config=sched_config,
            sim_config=SimConfig(telemetry=False),
        )[policy]
        point = result.get(ratios[0], variant)
        if (point.makespan, point.mean_turnaround) != \
                (flat.makespan, flat.mean_turnaround()):
            problems.append(
                f"{variant} at {ratios[0]:g}:1: "
                f"({point.makespan}, {point.mean_turnaround}) != flat "
                f"({flat.makespan}, {flat.mean_turnaround()})"
            )
    if problems:
        print(f"FATAL: 1:1 fabric diverges from the flat network "
              f"({len(problems)} mismatches):", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 2

    top = ratios[-1]
    sns = result.get(top, "SNS")
    loc = result.get(top, "SNS+loc")
    print(f"locality divergence at {top:g}:1: SNS {sns.route_evals} "
          f"route evals vs SNS+loc {loc.route_evals}")
    if not loc.route_evals < sns.route_evals:
        print("FATAL: locality-aware SNS does not reduce fabric route "
              "evaluations — the locality knob changed nothing",
              file=sys.stderr)
        return 2

    entry = {
        "grid": f"fig-oversub {OV_NODES}n",
        "total_wall_s": round(elapsed, 4),
        "configs": [
            {
                "policy": p.variant,
                "nodes": OV_NODES,
                "ratio": p.oversub,
                "makespan": p.makespan,
                "mean_turnaround": p.mean_turnaround,
                "counters": {
                    "fabric_link_refreshes": p.link_refreshes,
                    "fabric_route_evals": p.route_evals,
                },
            }
            for p in result.points
        ],
    }
    path = Path(args.output)
    report = json.loads(path.read_text()) if path.exists() else {}
    report[args.label or "fig-oversub"] = entry
    problems = check_divergence(report, args.label or "fig-oversub")
    if problems:
        print(f"FATAL: results diverge between entries "
              f"({len(problems)} mismatches):", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        print("not writing BENCH_sim.json — fix the divergence first",
              file=sys.stderr)
        return 2
    path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {path}")
    print("oversub gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None,
                        help="entry name in BENCH_sim.json "
                             "(default: current, or threadsN)")
    parser.add_argument("--no-caches", action="store_true",
                        help="benchmark the unmemoized reference path")
    parser.add_argument("--threads", type=int, default=1, metavar="N",
                        help="run the grid on an N-thread pool and gate "
                             "bit-identity against serial entries")
    parser.add_argument("--processes", type=int, default=1, metavar="N",
                        help="shard the grid across N forked worker "
                             "processes (shared-memory result buffers) "
                             "and gate bit-identity against serial "
                             "entries")
    parser.add_argument("--full", action="store_true",
                        help="run the full-scale Fig 20 grid instead of "
                             "the smoke grid: the complete 7,044-job "
                             "Trinity-like trace on 32,768 nodes")
    parser.add_argument("--trace-gate", action="store_true",
                        help="gate the observability layer: run the grid "
                             "untraced and fully traced, require "
                             "bit-identical results, passing invariant "
                             "replay, and <= 10%% wall-clock overhead")
    parser.add_argument("--chrome-out", default=None, metavar="PATH",
                        help="with --trace-gate: export one traced "
                             "config's Chrome trace_event file (CI "
                             "artifact)")
    parser.add_argument("--oversub-gate", action="store_true",
                        help="run the fig_oversub fabric sweep, gate the "
                             "flat-degenerate bit-identity contract and "
                             "the locality divergence, and merge the "
                             "entry into BENCH_sim.json (exit 2 on any "
                             "divergence)")
    parser.add_argument("--profile", action="store_true",
                        help="run the serial grid under cProfile and "
                             "emit the top-25 cumulative-time table "
                             "(CI artifact; writes no benchmark entry)")
    parser.add_argument("--profile-out", default=str(REPO_ROOT /
                                                     "bench_profile.txt"),
                        metavar="PATH",
                        help="with --profile: where to write the "
                             "cumulative-time table")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sim.json"))
    args = parser.parse_args(argv)

    if args.trace_gate:
        return run_trace_gate(args)
    if args.oversub_gate:
        return run_oversub_gate(args)
    if args.profile:
        return run_profiled(args)

    caches = not args.no_caches
    label: Optional[str] = args.label
    if label is None:
        if args.processes > 1:
            label = f"processes{args.processes}"
        elif args.threads > 1:
            label = f"threads{args.threads}"
        else:
            label = "current"
        if args.full:
            label = "fig20-full" if label == "current" \
                else f"fig20-full-{label}"
    if args.processes > 1:
        mode = f"{args.processes} processes"
    elif args.threads > 1:
        mode = f"{args.threads} threads"
    else:
        mode = "serial"
    scale = "full" if args.full else "smoke"
    print(f"benchmarking fig20 {scale} grid "
          f"(caches {'on' if caches else 'off'}, {mode}) ...")
    entry = run_grid(caches=caches, threads=args.threads,
                     processes=args.processes, full=args.full)
    print(f"total: {entry['total_wall_s']:.2f}s, "
          f"{entry['events_per_s']:.0f} events/s")

    path = Path(args.output)
    report = {}
    if path.exists():
        report = json.loads(path.read_text())
    # Wall-clock regression warning (CI surfaces it): compare against
    # the committed entry under the same label before overwriting it.
    # Soft perf gate: every run (CI labels included) is compared against
    # the committed canonical ``current`` entry for the same grid; bit
    # identity below stays the hard gate.
    prior = report.get("current") or report.get(label)
    if prior is not None and prior.get("grid") == entry["grid"]:
        ratio = entry["total_wall_s"] / prior["total_wall_s"]
        if ratio > WALL_REGRESSION_LIMIT:
            print(f"WARNING: wall-clock regression — "
                  f"{entry['total_wall_s']:.2f}s is {ratio:.2f}x the "
                  f"committed baseline "
                  f"({prior['total_wall_s']:.2f}s, limit "
                  f"{WALL_REGRESSION_LIMIT:.2f}x)")
    report[label] = entry
    baselines = [
        (name, e["total_wall_s"]) for name, e in report.items()
        if name != label and e.get("grid") == entry["grid"]
    ]
    for name, wall in baselines:
        print(f"vs {name}: {wall / entry['total_wall_s']:.2f}x")
    problems = check_divergence(report, label)
    if problems:
        print(f"FATAL: results diverge between entries "
              f"({len(problems)} mismatches):", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        print("not writing BENCH_sim.json — fix the divergence first",
              file=sys.stderr)
        return 2
    path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
