#!/usr/bin/env python3
"""Wall-clock benchmark of the Fig 20 smoke grid.

Times the fixed smoke-trace grid — 2 scaling ratios x 2 cluster sizes x
{CE, SNS} on ``smoke_trace_config()`` — and writes/merges the numbers
into ``BENCH_sim.json`` at the repo root, so perf regressions in the
event loop show up as numbers, not vibes:

    PYTHONPATH=src python tools/bench_report.py [--label after]
    PYTHONPATH=src python tools/bench_report.py --no-caches --label ref

Each entry records per-configuration wall seconds, simulated events,
events/second, and the kernel counters (batched arbitration solves,
coalesced events, skip-index hits, nodes scanned — see DESIGN.md §7),
plus the grid total.  Existing entries under other labels are
preserved, so a before/after pair can live side by side.

Every fast path in the simulator is required to be *bit-identical* to
the reference kernels, so after timing, this script cross-checks the
makespan and mean turnaround of every configuration against every
other entry already in BENCH_sim.json and **exits non-zero (2) on any
divergence** — a perf "win" that changes results is a bug, and CI
treats it as one.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import SimConfig                      # noqa: E402
from repro.experiments.common import run_all_policies   # noqa: E402
from repro.experiments.fig20_large_cluster import (     # noqa: E402
    smoke_trace_config,
)
from repro.hardware.topology import ClusterSpec         # noqa: E402
from repro.perfmodel import memo                        # noqa: E402
from repro.workloads.trace import synthesize_trace      # noqa: E402

#: The benchmark grid (fixed: changing it would break comparability).
RATIOS = (0.9, 0.5)
SIZES = (4096, 8192)
POLICIES = ("CE", "SNS")
SEED = 42

#: Kernel counters copied into each config entry (DESIGN.md §7).
COUNTER_COLUMNS = (
    "events_coalesced",
    "refresh_cycles",
    "arb_nodes_solved",
    "view_cache_hits",
    "nodes_scanned",
    "find_fail_hits",
    "jobs_skipped",
    "demand_cache_hits",
)


def run_grid(verbose: bool = True) -> dict:
    """Run the smoke grid once; returns the BENCH_sim entry payload."""
    trace_config = smoke_trace_config()
    configs = []
    total_wall = 0.0
    total_events = 0
    for ratio in RATIOS:
        jobs = synthesize_trace(seed=SEED, scaling_ratio=ratio,
                                config=trace_config)
        for nodes in SIZES:
            for policy in POLICIES:
                memo.clear_caches()
                cluster = ClusterSpec(num_nodes=nodes)
                start = time.perf_counter()
                runs = run_all_policies(
                    cluster, jobs, policy_names=(policy,),
                    sim_config=SimConfig(telemetry=False, max_sim_time=1e12),
                )
                wall = time.perf_counter() - start
                result = runs[policy]
                total_wall += wall
                total_events += result.events
                configs.append({
                    "policy": policy,
                    "nodes": nodes,
                    "ratio": ratio,
                    "wall_s": round(wall, 4),
                    "events": result.events,
                    "events_per_s": round(result.events / wall, 1),
                    "makespan": result.makespan,
                    "mean_turnaround": result.mean_turnaround(),
                    "counters": {
                        key: result.counters.get(key, 0)
                        for key in COUNTER_COLUMNS
                    },
                })
                if verbose:
                    print(f"  {policy:3s} {nodes:5d} nodes ratio {ratio}: "
                          f"{wall:6.2f}s  {result.events} events")
    return {
        "grid": "fig20-smoke 2x2x2",
        "caches": memo.caches_enabled(),
        "total_wall_s": round(total_wall, 4),
        "total_events": total_events,
        "events_per_s": round(total_events / total_wall, 1),
        "configs": configs,
    }


def check_divergence(report: dict, label: str) -> List[str]:
    """Cross-check results of every same-grid entry pair in ``report``.

    All entries replay the same traces with the same seed, so their
    per-configuration makespans and mean turnarounds must agree exactly
    — fast paths are contractually bit-identical to the reference.
    Returns a list of human-readable divergence descriptions (empty when
    everything matches).
    """
    grids: Dict[str, Dict[tuple, tuple]] = {}
    problems: List[str] = []
    for name, entry in report.items():
        seen = grids.setdefault(entry.get("grid", "?"), {})
        for config in entry.get("configs", []):
            key = (config["policy"], config["nodes"], config["ratio"])
            results = (config["makespan"], config["mean_turnaround"])
            known = seen.get(key)
            if known is None:
                seen[key] = (name, results)
            elif known[1] != results:
                problems.append(
                    f"{key}: '{name}' {results} != '{known[0]}' {known[1]}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="entry name in BENCH_sim.json (default: current)")
    parser.add_argument("--no-caches", action="store_true",
                        help="benchmark the unmemoized reference path")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sim.json"))
    args = parser.parse_args(argv)

    if args.no_caches:
        memo.set_caches_enabled(False)
    print(f"benchmarking fig20 smoke grid "
          f"(caches {'on' if memo.caches_enabled() else 'off'}) ...")
    entry = run_grid()
    print(f"total: {entry['total_wall_s']:.2f}s, "
          f"{entry['events_per_s']:.0f} events/s")

    path = Path(args.output)
    report = {}
    if path.exists():
        report = json.loads(path.read_text())
    report[args.label] = entry
    baselines = [
        (label, e["total_wall_s"]) for label, e in report.items()
        if label != args.label
    ]
    for label, wall in baselines:
        print(f"vs {label}: {wall / entry['total_wall_s']:.2f}x")
    problems = check_divergence(report, args.label)
    if problems:
        print(f"FATAL: fast-path results diverge from reference entries "
              f"({len(problems)} mismatches):", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        print("not writing BENCH_sim.json — fix the divergence first",
              file=sys.stderr)
        return 2
    path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
